// Command experiments regenerates every table and figure of the LATTE-CC
// paper's evaluation on the synthetic benchmark suite. See DESIGN.md for
// the experiment index and EXPERIMENTS.md for recorded paper-vs-measured
// comparisons.
//
// Usage:
//
//	experiments -list
//	experiments -exp fig11            # one experiment
//	experiments -all                  # everything, paper order
//	experiments -exp fig11 -quick     # smaller machine for a fast pass
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"lattecc/internal/harness"
	"lattecc/internal/sim"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list experiments and exit")
		exp     = flag.String("exp", "", "experiment id to run (see -list)")
		all     = flag.Bool("all", false, "run every experiment")
		quick   = flag.Bool("quick", false, "use a smaller GPU (2 SMs) for a fast smoke pass")
		verbose = flag.Bool("v", false, "print each simulation run")
		csv     = flag.Bool("csv", false, "emit machine-readable CSV instead of aligned tables")
	)
	flag.Parse()

	if *list {
		for _, e := range harness.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := sim.DefaultConfig()
	if *quick {
		cfg.NumSMs = 2
	}
	suite := harness.NewSuite(cfg)
	suite.Verbose = *verbose

	run := func(e harness.Experiment) {
		start := time.Now()
		if *csv {
			if e.Table == nil {
				fmt.Fprintf(os.Stderr, "%s has no tabular form; skipping in CSV mode\n", e.ID)
				return
			}
			tab, err := e.Table(suite)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.ID, err)
				os.Exit(1)
			}
			fmt.Printf("# %s: %s\n%s\n", e.ID, e.Title, tab.CSV())
			return
		}
		fmt.Printf("== %s: %s ==\n", e.ID, e.Title)
		out, err := e.Run(suite)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Println(out)
		fmt.Printf("(%s in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	switch {
	case *all:
		for _, e := range harness.Experiments() {
			run(e)
		}
	case *exp != "":
		e, ok := harness.ExperimentByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
			os.Exit(2)
		}
		run(e)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
