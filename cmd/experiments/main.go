// Command experiments regenerates every table and figure of the LATTE-CC
// paper's evaluation on the synthetic benchmark suite. See DESIGN.md for
// the experiment index and EXPERIMENTS.md for recorded paper-vs-measured
// comparisons.
//
// Runs are enumerated up front and drained through the harness's
// parallel pool (-jobs workers, single-flight deduplicated), then
// rendered serially from the cache — output is byte-identical for any
// -jobs value.
//
// Usage:
//
//	experiments -list
//	experiments -exp fig11            # one experiment
//	experiments -all                  # everything, paper order
//	experiments -all -jobs 8 -v       # parallel, with progress/ETA
//	experiments -exp fig11 -quick     # smaller machine for a fast pass
//	experiments -all -store .rcache   # persist results; reruns load from disk
//	experiments -all -tiny -golden testdata/golden_tiny.txt           # CI gate
//	experiments -all -tiny -golden testdata/golden_tiny.txt -update   # regenerate
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"lattecc/internal/harness"
	"lattecc/internal/resultstore"
	"lattecc/internal/sim"
	"lattecc/internal/tracefile"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list experiments and exit")
		exp     = flag.String("exp", "", "experiment id to run (see -list)")
		all     = flag.Bool("all", false, "run every experiment")
		quick   = flag.Bool("quick", false, "use a smaller GPU (2 SMs) for a fast smoke pass")
		tiny    = flag.Bool("tiny", false, "use the CI golden-gate machine (2 SMs, 120k-instruction cap)")
		jobs    = flag.Int("jobs", runtime.GOMAXPROCS(0), "max concurrent simulations (must be >= 1)")
		smJobs  = flag.Int("smjobs", 0, "worker goroutines ticking SMs inside each simulation (0/1 = serial; results are bit-identical for any value)")
		verbose = flag.Bool("v", false, "print per-run progress with ETA (stderr)")
		csv     = flag.Bool("csv", false, "emit machine-readable CSV instead of aligned tables")
		hashes  = flag.Bool("hashes", false, "print per-run StateHash lines instead of tables (daemon parity checks)")
		golden  = flag.String("golden", "", "compare the rendered text output against this golden file")
		update  = flag.Bool("update", false, "with -golden: rewrite the golden file instead of comparing")
		store    = flag.String("store", "", "persistent result-store directory: reuse results across invocations (empty = off)")
		traceDir = flag.String("trace-dir", "", "trace-corpus directory: register every <NAME>.lct/<NAME>.json pair as a replay workload")
	)
	flag.Parse()
	if *traceDir != "" {
		// Registered before the suite exists — the registry contract is
		// startup-only (no lock below the determinism boundary).
		names, err := tracefile.RegisterCorpus(*traceDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(2)
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "experiments: trace corpus: %s\n", strings.Join(names, " "))
		}
	}
	if *jobs < 1 {
		fmt.Fprintf(os.Stderr, "experiments: -jobs must be >= 1, got %d\n", *jobs)
		os.Exit(2)
	}
	if *smJobs < 0 {
		fmt.Fprintf(os.Stderr, "experiments: -smjobs must be >= 0, got %d\n", *smJobs)
		os.Exit(2)
	}

	if *list {
		for _, e := range harness.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	if *golden != "" && *csv {
		fmt.Fprintln(os.Stderr, "experiments: -golden compares text output; drop -csv")
		os.Exit(2)
	}

	cfg := sim.DefaultConfig()
	if *quick || *tiny {
		cfg.NumSMs = 2
	}
	if *tiny {
		// The golden gate wants seconds-per-run, not fidelity: cap every
		// simulation hard. Numbers at this scale are meaningless; the
		// point is bit-exact reproducibility across runs and machines.
		cfg.MaxInstructions = 120_000
	}
	cfg.SMJobs = *smJobs
	suite := harness.NewSuite(cfg)
	suite.Jobs = *jobs
	if *verbose {
		suite.Reporter = harness.NewProgressReporter(os.Stderr)
	}
	if *store != "" {
		st, err := resultstore.Open(*store, resultstore.Options{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: opening result store: %v\n", err)
			os.Exit(2)
		}
		suite.Store = st
	}

	var selected []harness.Experiment
	switch {
	case *all:
		selected = harness.Experiments()
	case *exp != "":
		e, ok := harness.ExperimentByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
			os.Exit(2)
		}
		selected = []harness.Experiment{e}
	default:
		flag.Usage()
		os.Exit(2)
	}

	// Pre-submit the union of every selected experiment's run set and
	// drain it through the pool; rendering below then hits the cache.
	for _, e := range selected {
		if e.Runs != nil {
			suite.Prefetch(e.Runs()...)
		}
	}
	if err := suite.RunAll(); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}

	if *hashes {
		printHashes(suite, selected)
		return
	}

	var goldenBuf strings.Builder
	for _, e := range selected {
		start := time.Now()
		if *csv {
			if e.Table == nil {
				fmt.Fprintf(os.Stderr, "%s has no tabular form; skipping in CSV mode\n", e.ID)
				continue
			}
			tab, err := e.Table(suite)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.ID, err)
				os.Exit(1)
			}
			fmt.Printf("# %s: %s\n%s\n", e.ID, e.Title, tab.CSV())
			continue
		}
		out, err := e.Run(suite)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		section := fmt.Sprintf("== %s: %s ==\n%s\n", e.ID, e.Title, out)
		if *golden != "" {
			goldenBuf.WriteString(section)
			continue
		}
		fmt.Print(section)
		fmt.Printf("(%s in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	if *golden != "" {
		if err := checkGolden(*golden, goldenBuf.String(), *update); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
	}
}

// printHashes emits one sorted "hash <workload> <policy> <variant>
// 0x<state-hash>" line per distinct run in the selected experiments.
// This is the machine-readable ground truth the latteccd smoke test
// compares daemon results against.
func printHashes(suite *harness.Suite, selected []harness.Experiment) {
	seen := map[string]bool{}
	var lines []string
	for _, e := range selected {
		if e.Runs == nil {
			continue
		}
		for _, r := range e.Runs() {
			res := suite.MustRun(r.Workload, r.Policy, r.Variant)
			line := fmt.Sprintf("hash %s %s %s 0x%016x", r.Workload, r.Policy, variantTag(r.Variant), res.StateHash())
			if !seen[line] {
				seen[line] = true
				lines = append(lines, line)
			}
		}
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Println(l)
	}
}

// variantTag renders a Variant as a stable single token ("-" when zero).
func variantTag(v harness.Variant) string {
	var parts []string
	if v.CapacityOnly {
		parts = append(parts, "cap")
	}
	if v.LatencyOnly {
		parts = append(parts, "lat")
	}
	if v.ExtraHitLatency != 0 {
		parts = append(parts, fmt.Sprintf("xhl=%d", v.ExtraHitLatency))
	}
	if v.SampleSeries {
		parts = append(parts, "series")
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, ",")
}

// checkGolden compares got against the golden file (or rewrites it when
// update is set). Mismatches report the first differing line so CI logs
// show where determinism drifted.
func checkGolden(path, got string, update bool) error {
	if update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			return err
		}
		fmt.Printf("golden: wrote %s (%d bytes)\n", path, len(got))
		return nil
	}
	want, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading golden file: %w (regenerate with -update)", err)
	}
	if string(want) == got {
		fmt.Printf("golden: OK, output matches %s (%d bytes)\n", path, len(got))
		return nil
	}
	wantLines := strings.Split(string(want), "\n")
	gotLines := strings.Split(got, "\n")
	for i := 0; i < len(wantLines) || i < len(gotLines); i++ {
		var w, g string
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if w != g {
			return fmt.Errorf("output diverges from %s at line %d:\n  golden: %q\n  got:    %q\n(intentional change? regenerate with -update)",
				path, i+1, w, g)
		}
	}
	return fmt.Errorf("output diverges from %s (length %d vs %d)", path, len(want), len(got))
}
