// Command compressbench explores the five cache-line compression codecs
// offline: it compresses a file (or the synthetic workloads' data images)
// line by line and reports per-codec ratios, latencies, and throughput.
//
// Usage:
//
//	compressbench -file /path/to/data
//	compressbench -workload SS
//	compressbench                    # whole synthetic suite
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"lattecc/internal/compress"
	"lattecc/internal/stats"
	"lattecc/internal/trace"
	"lattecc/internal/workload"
)

func main() {
	var (
		file         = flag.String("file", "", "compress this file's contents instead of synthetic data")
		workloadName = flag.String("workload", "", "compress one synthetic workload's data image")
		lines        = flag.Int("lines", 2000, "number of cache lines to sample")
	)
	flag.Parse()

	var sample [][]byte
	var label string
	switch {
	case *file != "":
		data, err := os.ReadFile(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "compressbench:", err)
			os.Exit(1)
		}
		for off := 0; off+compress.LineSize <= len(data) && len(sample) < *lines; off += compress.LineSize {
			sample = append(sample, data[off:off+compress.LineSize])
		}
		label = *file
	case *workloadName != "":
		w, err := workload.ByName(*workloadName)
		if err != nil {
			fmt.Fprintln(os.Stderr, "compressbench:", err)
			os.Exit(1)
		}
		sample = workloadSample(w, *lines)
		label = *workloadName
	default:
		for _, w := range workload.All() {
			sample = append(sample, workloadSample(w, *lines/len(workload.All())+1)...)
		}
		label = "synthetic suite"
	}
	if len(sample) == 0 {
		fmt.Fprintln(os.Stderr, "compressbench: no full cache lines in input")
		os.Exit(1)
	}

	sc := compress.NewSC()
	for _, l := range sample {
		sc.Train(l)
	}
	sc.Rebuild()
	codecs := []compress.Codec{
		compress.NewBDI(), compress.NewFPC(), compress.NewCPACK(),
		compress.NewBPC(), sc,
	}

	fmt.Printf("input: %s (%d lines, %d bytes)\n\n", label, len(sample), len(sample)*compress.LineSize)
	t := stats.NewTable("codec", "ratio", "raw-lines", "decomp-cyc", "MB/s(sw)")
	for _, c := range codecs {
		var compressed, raws int
		start := time.Now()
		for _, l := range sample {
			enc := c.Compress(l)
			compressed += enc.Size
			if enc.Raw {
				raws++
			}
		}
		elapsed := time.Since(start)
		mbps := float64(len(sample)*compress.LineSize) / elapsed.Seconds() / 1e6
		t.AddRow(c.Name(),
			float64(len(sample)*compress.LineSize)/float64(compressed),
			raws, c.DecompLatency(), mbps)
	}
	fmt.Print(t.String())
}

// workloadSample collects lines the workload's programs touch.
func workloadSample(w trace.Workload, n int) [][]byte {
	data := w.Data()
	seen := map[uint64]bool{}
	var out [][]byte
	for _, k := range w.Kernels() {
		for wi := 0; wi < k.WarpsPerBlock && len(out) < n; wi++ {
			p := k.Program(0, wi)
			for len(out) < n {
				inst, ok := p.Next()
				if !ok {
					break
				}
				for _, addr := range inst.Addrs {
					line := addr / compress.LineSize
					if !seen[line] {
						seen[line] = true
						out = append(out, data.Line(line))
					}
				}
			}
		}
	}
	return out
}
