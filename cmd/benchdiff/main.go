// Command benchdiff turns `go test -bench` output into a committed JSON
// baseline (benchmark name -> ns/op, B/op, allocs/op plus domain metrics)
// and gates CI on performance regressions against the previous baseline.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime 1x -count 3 -benchmem . | \
//	    benchdiff -out BENCH_PR6.json -baseline-dir . -max-regress 1.20
//
//	benchdiff -in bench.out -baseline BENCH_PR3.json   # explicit baseline
//
// With -count > 1 the minimum-ns/op run per benchmark is kept (its B/op
// and allocs/op ride along), which damps scheduler noise; domain metrics
// (speedup, ratio, ...) come from the simulator and are deterministic.
// A benchmark regresses when its ns/op — or, when both sides recorded
// them, its B/op or allocs/op — exceeds baseline * max-regress. Older
// baselines written without -benchmem simply skip the allocation gates.
// Benchmarks that appear or disappear are reported but never fail the
// gate. With no baseline available (first run) the tool just writes
// -out and succeeds.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Bench is one benchmark's record in the JSON baseline. BytesPerOp and
// AllocsPerOp are pointers because baselines predating the allocation
// gate (or runs without -benchmem) don't record them — nil means "not
// measured", and the gate only fires when both sides have a value.
type Bench struct {
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// File is the committed baseline format.
type File struct {
	Label      string           `json:"label,omitempty"`
	Benchmarks map[string]Bench `json:"benchmarks"`
}

func main() {
	var (
		in         = flag.String("in", "-", "bench output to read ('-' = stdin)")
		out        = flag.String("out", "", "write the parsed results to this JSON file")
		baseline   = flag.String("baseline", "", "explicit baseline JSON to compare against")
		blDir      = flag.String("baseline-dir", "", "auto-pick the newest BENCH_PR<n>.json in this directory (excluding -out)")
		maxRegress = flag.Float64("max-regress", 1.20, "fail when ns/op exceeds baseline by this factor")
		label      = flag.String("label", "", "label stored in the output JSON")
	)
	flag.Parse()

	if err := run(*in, *out, *baseline, *blDir, *maxRegress, *label); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run(in, out, baseline, blDir string, maxRegress float64, label string) error {
	var r io.Reader = os.Stdin
	if in != "-" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	current, err := parseBench(r)
	if err != nil {
		return err
	}
	if len(current.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found in %s", in)
	}
	current.Label = label

	// Resolve the baseline before writing -out, so a CI run that
	// overwrites the committed file still compares against it.
	var base *File
	basePath := baseline
	if basePath == "" && blDir != "" {
		basePath, err = latestBaseline(blDir, out)
		if err != nil {
			return err
		}
	}
	if basePath != "" {
		base, err = readBaseline(basePath)
		if err != nil {
			return err
		}
	}

	if out != "" {
		buf, err := json.MarshalIndent(current, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d benchmarks)\n", out, len(current.Benchmarks))
	}

	if base == nil {
		fmt.Println("no baseline to compare against; treating this run as the first baseline")
		return nil
	}
	return compare(base, current, basePath, maxRegress)
}

// benchLine matches one `go test -bench` result line, e.g.
// "BenchmarkFig11Speedup/SS/LATTE-CC-8  1  123456 ns/op  1.234 speedup".
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+(.*)$`)

// procSuffix is the "-<GOMAXPROCS>" tail Go appends to benchmark names;
// stripped so baselines compare across machines with different core counts.
var procSuffix = regexp.MustCompile(`-\d+$`)

// parseBench folds bench output into per-benchmark records, keeping the
// minimum ns/op seen across repeated -count runs.
func parseBench(r io.Reader) (*File, error) {
	out := &File{Benchmarks: map[string]Bench{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name := strings.TrimPrefix(procSuffix.ReplaceAllString(m[1], ""), "Benchmark")
		fields := strings.Fields(m[2])
		var nsPerOp float64
		var bytesPerOp, allocsPerOp *float64
		metrics := map[string]float64{}
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				nsPerOp = v
			case "B/op":
				b := v
				bytesPerOp = &b
			case "allocs/op":
				a := v
				allocsPerOp = &a
			case "MB/s":
				// throughput restates ns/op; don't gate on it twice
			default:
				metrics[unit] = v
			}
		}
		if nsPerOp == 0 {
			continue
		}
		prev, seen := out.Benchmarks[name]
		if !seen || nsPerOp < prev.NsPerOp {
			if seen && len(metrics) == 0 {
				metrics = prev.Metrics
			}
			if seen && bytesPerOp == nil {
				bytesPerOp = prev.BytesPerOp
			}
			if seen && allocsPerOp == nil {
				allocsPerOp = prev.AllocsPerOp
			}
			out.Benchmarks[name] = Bench{NsPerOp: nsPerOp, BytesPerOp: bytesPerOp, AllocsPerOp: allocsPerOp, Metrics: metrics}
		}
	}
	return out, sc.Err()
}

// prNumber extracts <n> from BENCH_PR<n>.json names.
var prNumber = regexp.MustCompile(`^BENCH_PR(\d+)\.json$`)

// latestBaseline picks the highest-numbered BENCH_PR<n>.json in dir,
// skipping the file this run writes. Empty string means no baseline.
func latestBaseline(dir, exclude string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	best, bestN := "", -1
	for _, e := range entries {
		if e.IsDir() || e.Name() == filepath.Base(exclude) {
			continue
		}
		m := prNumber.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		n, _ := strconv.Atoi(m[1])
		if n > bestN {
			bestN, best = n, filepath.Join(dir, e.Name())
		}
	}
	return best, nil
}

func readBaseline(path string) (*File, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading baseline: %w", err)
	}
	var f File
	if err := json.Unmarshal(buf, &f); err != nil {
		return nil, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	return &f, nil
}

// compare reports per-benchmark deltas and fails on ns/op, B/op, or
// allocs/op regressions. The allocation gates only fire when both the
// baseline and the current run recorded the metric (-benchmem).
func compare(base, current *File, basePath string, maxRegress float64) error {
	names := make([]string, 0, len(current.Benchmarks))
	for n := range current.Benchmarks {
		names = append(names, n)
	}
	sort.Strings(names)

	var regressions []string
	for _, n := range names {
		cur := current.Benchmarks[n]
		b, ok := base.Benchmarks[n]
		if !ok {
			fmt.Printf("new       %-50s %12.0f ns/op\n", n, cur.NsPerOp)
			continue
		}
		ratio := cur.NsPerOp / b.NsPerOp
		status := "ok"
		if ratio > maxRegress {
			status = "REGRESSED"
			regressions = append(regressions, fmt.Sprintf("%s: %.0f -> %.0f ns/op (%.2fx > %.2fx allowed)",
				n, b.NsPerOp, cur.NsPerOp, ratio, maxRegress))
		}
		for _, g := range []struct {
			unit      string
			base, cur *float64
		}{
			{"B/op", b.BytesPerOp, cur.BytesPerOp},
			{"allocs/op", b.AllocsPerOp, cur.AllocsPerOp},
		} {
			if g.base == nil || g.cur == nil {
				continue // one side wasn't run with -benchmem
			}
			// A zero baseline gates on any allocation at all: once a
			// path is proven allocation-free, a single alloc/op is a
			// regression no ratio would catch.
			if (*g.base == 0 && *g.cur > 0) || (*g.base > 0 && *g.cur / *g.base > maxRegress) {
				status = "REGRESSED"
				regressions = append(regressions, fmt.Sprintf("%s: %.0f -> %.0f %s (> %.2fx allowed)",
					n, *g.base, *g.cur, g.unit, maxRegress))
			}
		}
		fmt.Printf("%-9s %-50s %12.0f ns/op  (baseline %.0f, %.2fx)\n", status, n, cur.NsPerOp, b.NsPerOp, ratio)
	}
	baseNames := make([]string, 0, len(base.Benchmarks))
	for n := range base.Benchmarks {
		baseNames = append(baseNames, n)
	}
	sort.Strings(baseNames)
	for _, n := range baseNames {
		if _, ok := current.Benchmarks[n]; !ok {
			fmt.Printf("removed   %s\n", n)
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed >%.0f%% vs %s:\n  %s",
			len(regressions), (maxRegress-1)*100, basePath, strings.Join(regressions, "\n  "))
	}
	fmt.Printf("all %d benchmarks within %.2fx of %s\n", len(names), maxRegress, basePath)
	return nil
}
