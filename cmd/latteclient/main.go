// Command latteclient is the CI-facing client for latteccd and
// latteroute: a small, dependency-free replacement for the curl +
// python3 JSON poking the daemon-smoke workflow used to inline. The
// same binary drives a single worker and the cluster router — their
// job APIs are wire-compatible by construction.
//
// Commands:
//
//	latteclient ready   -addr URL [-timeout 30s] [-min-workers N]
//	    Poll /readyz until it answers 200 (and, against a router, until
//	    at least -min-workers non-draining workers are registered).
//
//	latteclient submit  -addr URL (-runs W:P,... | -runs-from FILE)
//	                    [-split] [-golden FILE] [-timeout 5m] [-interval 200ms]
//	    Submit runs, poll to completion, and print one sorted
//	    "hash <workload> <policy> - 0x<state-hash>" line per run —
//	    byte-compatible with `experiments -hashes` output. -runs-from
//	    reads runs out of such a file, so a golden hash file doubles as
//	    the batch spec. -split submits one job per run instead of one
//	    batch (spreads jobs across cluster workers). -golden asserts
//	    every printed line appears in FILE and fails otherwise.
//
//	latteclient metrics -addr URL [-grep REGEXP]...
//	    Fetch /metrics, print it, and fail unless every -grep pattern
//	    matches at least one line.
//
//	latteclient store   -addr URL [-min-hits N] [-max-fresh N] [-min-corrupt N]
//	    Fetch /metrics, print a result-store counter summary, and assert
//	    bounds on it: at least -min-hits store hits, at most -max-fresh
//	    fresh simulations, at least -min-corrupt discarded corrupt
//	    entries (each check skipped when its flag is negative, the
//	    default). Fails if the daemon has no store configured.
//
// Exit status 0 on success, 1 on any failure (failed job, missing
// golden line, timeout), 2 on usage errors.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "ready":
		err = cmdReady(os.Args[2:])
	case "submit":
		err = cmdSubmit(os.Args[2:])
	case "metrics":
		err = cmdMetrics(os.Args[2:])
	case "store":
		err = cmdStore(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "latteclient: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "latteclient: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: latteclient {ready|submit|metrics|store} -addr URL [flags]")
}

// client is shared by every command: plain HTTP with a bounded
// per-request timeout; loops provide their own deadlines.
var client = &http.Client{Timeout: 15 * time.Second}

// --- ready ------------------------------------------------------------

func cmdReady(args []string) error {
	fs := flag.NewFlagSet("ready", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8437", "daemon or router base URL")
	timeout := fs.Duration("timeout", 30*time.Second, "give up after this long")
	minWorkers := fs.Int("min-workers", 0, "additionally wait for this many non-draining registered workers (router only)")
	_ = fs.Parse(args)

	deadline := time.Now().Add(*timeout)
	for {
		if ok := probeReady(*addr, *minWorkers); ok {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%s not ready after %v", *addr, *timeout)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

func probeReady(addr string, minWorkers int) bool {
	resp, err := client.Get(addr + "/readyz")
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false
	}
	if minWorkers <= 0 {
		return true
	}
	wresp, err := client.Get(addr + "/v1/workers")
	if err != nil || wresp.StatusCode != http.StatusOK {
		if wresp != nil {
			wresp.Body.Close()
		}
		return false
	}
	defer wresp.Body.Close()
	var body struct {
		Workers []struct {
			Draining bool `json:"draining"`
		} `json:"workers"`
	}
	if err := json.NewDecoder(wresp.Body).Decode(&body); err != nil {
		return false
	}
	n := 0
	for _, w := range body.Workers {
		if !w.Draining {
			n++
		}
	}
	return n >= minWorkers
}

// --- submit -----------------------------------------------------------

// runSpec is one (workload, policy) pair; the zero variant is the only
// one the hash-line format and the CI gates use.
type runSpec struct {
	Workload string `json:"workload"`
	Policy   string `json:"policy"`
}

// jobStatus is the subset of the daemon's and router's job view the
// client reads — the two are wire-compatible.
type jobStatus struct {
	ID      string `json:"id"`
	Status  string `json:"status"`
	Error   string `json:"error,omitempty"`
	Results []struct {
		Workload  string `json:"workload"`
		Policy    string `json:"policy"`
		StateHash string `json:"state_hash"`
	} `json:"results,omitempty"`
}

func cmdSubmit(args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8437", "daemon or router base URL")
	runsArg := fs.String("runs", "", "comma-separated WORKLOAD:POLICY pairs, e.g. SS:LATTE-CC,BO:Uncompressed")
	runsFrom := fs.String("runs-from", "", "read runs from an `experiments -hashes` style file")
	split := fs.Bool("split", false, "submit one job per run instead of one batch")
	golden := fs.String("golden", "", "fail unless every emitted hash line appears in this file")
	timeout := fs.Duration("timeout", 5*time.Minute, "overall completion deadline")
	interval := fs.Duration("interval", 200*time.Millisecond, "status poll cadence")
	_ = fs.Parse(args)

	runs, err := parseRuns(*runsArg, *runsFrom)
	if err != nil {
		return err
	}
	if len(runs) == 0 {
		return fmt.Errorf("no runs: give -runs or -runs-from")
	}

	deadline := time.Now().Add(*timeout)
	batches := [][]runSpec{runs}
	if *split {
		batches = make([][]runSpec, 0, len(runs))
		for _, r := range runs {
			batches = append(batches, []runSpec{r})
		}
	}
	ids := make([]string, 0, len(batches))
	for _, b := range batches {
		id, err := submitBatch(*addr, b, deadline)
		if err != nil {
			return err
		}
		ids = append(ids, id)
	}
	fmt.Fprintf(os.Stderr, "latteclient: submitted %d run(s) as %d job(s)\n", len(runs), len(ids))

	lines, err := pollAll(*addr, ids, deadline, *interval)
	if err != nil {
		return err
	}
	if len(lines) != len(runs) {
		return fmt.Errorf("want %d result lines, got %d", len(runs), len(lines))
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Println(l)
	}
	if *golden != "" {
		if err := checkGolden(lines, *golden); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "latteclient: all %d hash lines match %s\n", len(lines), *golden)
	}
	return nil
}

// parseRuns merges the -runs list and the -runs-from file.
func parseRuns(runsArg, runsFrom string) ([]runSpec, error) {
	var runs []runSpec
	seen := map[runSpec]bool{}
	add := func(r runSpec) {
		if !seen[r] {
			seen[r] = true
			runs = append(runs, r)
		}
	}
	if runsArg != "" {
		for _, tok := range strings.Split(runsArg, ",") {
			w, p, ok := strings.Cut(strings.TrimSpace(tok), ":")
			if !ok || w == "" || p == "" {
				return nil, fmt.Errorf("bad -runs entry %q (want WORKLOAD:POLICY)", tok)
			}
			add(runSpec{Workload: w, Policy: p})
		}
	}
	if runsFrom != "" {
		data, err := os.ReadFile(runsFrom)
		if err != nil {
			return nil, err
		}
		for _, line := range strings.Split(string(data), "\n") {
			line = strings.TrimSpace(line)
			if line == "" {
				continue
			}
			// "hash <workload> <policy> <variant-tag> 0x<state-hash>"
			f := strings.Fields(line)
			if len(f) != 5 || f[0] != "hash" {
				return nil, fmt.Errorf("%s: unparseable hash line %q", runsFrom, line)
			}
			if f[3] != "-" {
				return nil, fmt.Errorf("%s: run %s/%s has a non-zero variant %q; the job API submits zero variants only", runsFrom, f[1], f[2], f[3])
			}
			add(runSpec{Workload: f[1], Policy: f[2]})
		}
	}
	return runs, nil
}

// submitBatch POSTs one job, retrying 429/503 answers (queue pressure,
// a router between workers) until the deadline.
func submitBatch(addr string, runs []runSpec, deadline time.Time) (string, error) {
	body, err := json.Marshal(map[string]any{"runs": runs})
	if err != nil {
		return "", err
	}
	for {
		resp, err := client.Post(addr+"/v1/runs", "application/json", bytes.NewReader(body))
		if err != nil {
			return "", err
		}
		payload, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted:
			var ack struct {
				ID string `json:"id"`
			}
			if err := json.Unmarshal(payload, &ack); err != nil || ack.ID == "" {
				return "", fmt.Errorf("bad submit ack: %s", strings.TrimSpace(string(payload)))
			}
			return ack.ID, nil
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			if time.Now().After(deadline) {
				return "", fmt.Errorf("submit still answers %d at deadline: %s", resp.StatusCode, strings.TrimSpace(string(payload)))
			}
			time.Sleep(500 * time.Millisecond)
		default:
			return "", fmt.Errorf("submit rejected with %d: %s", resp.StatusCode, strings.TrimSpace(string(payload)))
		}
	}
}

// pollAll sweeps the pending job set until every job is terminal,
// collecting hash lines from done jobs and failing fast on a failed
// one.
func pollAll(addr string, ids []string, deadline time.Time, interval time.Duration) ([]string, error) {
	pending := map[string]bool{}
	for _, id := range ids {
		pending[id] = true
	}
	var lines []string
	for len(pending) > 0 {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("%d job(s) still pending at deadline", len(pending))
		}
		for _, id := range ids {
			if !pending[id] {
				continue
			}
			st, err := fetchStatus(addr, id)
			if err != nil {
				// Transient router/worker wobble; the deadline bounds it.
				continue
			}
			switch st.Status {
			case "done":
				for _, r := range st.Results {
					lines = append(lines, fmt.Sprintf("hash %s %s - %s", r.Workload, r.Policy, r.StateHash))
				}
				delete(pending, id)
			case "failed":
				return nil, fmt.Errorf("job %s failed: %s", id, st.Error)
			}
		}
		if len(pending) > 0 {
			time.Sleep(interval)
		}
	}
	return lines, nil
}

func fetchStatus(addr, id string) (jobStatus, error) {
	resp, err := client.Get(addr + "/v1/runs/" + id)
	if err != nil {
		return jobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return jobStatus{}, fmt.Errorf("status %d", resp.StatusCode)
	}
	var st jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return jobStatus{}, err
	}
	return st, nil
}

// checkGolden asserts every line appears verbatim in the golden file.
func checkGolden(lines []string, goldenPath string) error {
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		return err
	}
	want := map[string]bool{}
	for _, l := range strings.Split(string(data), "\n") {
		if l = strings.TrimSpace(l); l != "" {
			want[l] = true
		}
	}
	for _, l := range lines {
		if !want[l] {
			return fmt.Errorf("hash line not in golden set %s: %s", goldenPath, l)
		}
	}
	return nil
}

// --- metrics ----------------------------------------------------------

// grepList collects repeated -grep flags.
type grepList []string

func (g *grepList) String() string     { return strings.Join(*g, ", ") }
func (g *grepList) Set(s string) error { *g = append(*g, s); return nil }

// --- store ------------------------------------------------------------

// cmdStore reads the daemon's result-store counters off /metrics and
// asserts bounds on them. It is the CI hook for the warm-restart gate:
// "the second pass served everything from disk" becomes
// `latteclient store -min-hits N -max-fresh 0` instead of fragile greps.
func cmdStore(args []string) error {
	fs := flag.NewFlagSet("store", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8437", "daemon base URL")
	minHits := fs.Int64("min-hits", -1, "fail if runs served from the store < N (-1 = no check)")
	maxFresh := fs.Int64("max-fresh", -1, "fail if fresh simulations > N (-1 = no check)")
	minCorrupt := fs.Int64("min-corrupt", -1, "fail if corrupt entries discarded < N (-1 = no check)")
	_ = fs.Parse(args)

	resp, err := client.Get(*addr + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("metrics answered %d", resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}

	vals := map[string]int64{}
	for _, l := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(l, "#") {
			continue
		}
		f := strings.Fields(l)
		if len(f) != 2 {
			continue
		}
		v, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue
		}
		vals[f[0]] = v
	}
	if _, ok := vals["latteccd_store_hits_total"]; !ok {
		return fmt.Errorf("%s has no result store configured (no latteccd_store_* metrics)", *addr)
	}

	storeHits := vals["latteccd_simulation_store_hits_total"]
	fresh := vals["latteccd_simulations_fresh_total"]
	corrupt := vals["latteccd_store_corrupt_total"]
	fmt.Printf("store: runs-from-store=%d fresh-sims=%d mem-hits=%d\n",
		storeHits, fresh, vals["latteccd_simulation_cache_hits_total"])
	fmt.Printf("store: disk hits=%d misses=%d corrupt=%d evictions=%d saves=%d entries=%d bytes=%d\n",
		vals["latteccd_store_hits_total"], vals["latteccd_store_misses_total"], corrupt,
		vals["latteccd_store_evictions_total"], vals["latteccd_store_saves_total"],
		vals["latteccd_store_entries"], vals["latteccd_store_bytes"])
	fmt.Printf("store: peer hits=%d misses=%d\n",
		vals["latteccd_store_peer_hits_total"], vals["latteccd_store_peer_misses_total"])

	if *minHits >= 0 && storeHits < *minHits {
		return fmt.Errorf("runs served from store = %d, want >= %d", storeHits, *minHits)
	}
	if *maxFresh >= 0 && fresh > *maxFresh {
		return fmt.Errorf("fresh simulations = %d, want <= %d", fresh, *maxFresh)
	}
	if *minCorrupt >= 0 && corrupt < *minCorrupt {
		return fmt.Errorf("corrupt entries discarded = %d, want >= %d", corrupt, *minCorrupt)
	}
	return nil
}

func cmdMetrics(args []string) error {
	fs := flag.NewFlagSet("metrics", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8437", "daemon or router base URL")
	var greps grepList
	fs.Var(&greps, "grep", "regexp that must match at least one metrics line (repeatable)")
	_ = fs.Parse(args)

	resp, err := client.Get(*addr + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("metrics answered %d", resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	os.Stdout.Write(data)
	lines := strings.Split(string(data), "\n")
	for _, expr := range greps {
		re, err := regexp.Compile(expr)
		if err != nil {
			return fmt.Errorf("bad -grep %q: %v", expr, err)
		}
		found := false
		for _, l := range lines {
			if re.MatchString(l) {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("no metrics line matches %q", expr)
		}
	}
	return nil
}
