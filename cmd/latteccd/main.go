// Command latteccd serves the LATTE-CC simulation harness as a daemon:
// a long-lived process that keeps one result cache (harness.Suite) per
// machine configuration and accepts simulation jobs over HTTP/JSON.
// Repeated runs of the same (workload, policy, variant, config) are
// served from the resident cache instead of re-simulating, and every
// result carries the same StateHash a direct CLI run would report.
//
// Usage:
//
//	latteccd                          # paper machine on :8437
//	latteccd -tiny -addr :9000        # CI smoke machine
//	latteccd -workers 4 -jobs 8       # 4 concurrent jobs, 8-wide sim pool
//	latteccd -store /var/lattecc      # persist results across restarts
//
// API:
//
//	POST /v1/runs              submit a run or batch; 202 with a job ID
//	GET  /v1/runs/{id}         job status and results
//	GET  /v1/runs/{id}/events  SSE progress stream
//	GET  /v1/results/{key}     raw result-store entry (cache-peer protocol)
//	GET  /metrics              Prometheus text format
//	GET  /healthz, /readyz     probes (readyz answers 503 while draining)
//
// SIGINT/SIGTERM drains gracefully: new submissions get 503, queued and
// in-flight jobs complete (bounded by -drain), then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lattecc/internal/resultstore"
	"lattecc/internal/server"
	"lattecc/internal/sim"
	"lattecc/internal/tracefile"
)

// defaultAdvertise derives the URL a router on the same host can dial
// this worker at from its -addr flag: ":8437" and "0.0.0.0:8437"
// advertise the loopback address, explicit hosts advertise themselves.
func defaultAdvertise(addr string) string {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return "http://127.0.0.1" + addr // addr was ":port"-less junk; let the URL check reject it
	}
	if host == "" || host == "0.0.0.0" || host == "::" {
		host = "127.0.0.1"
	}
	return "http://" + net.JoinHostPort(host, port)
}

func main() {
	var (
		addr      = flag.String("addr", ":8437", "listen address")
		workers   = flag.Int("workers", 2, "jobs executing concurrently")
		jobs      = flag.Int("jobs", 0, "simulation pool width per job (0 = GOMAXPROCS)")
		smJobs    = flag.Int("smjobs", 0, "worker goroutines ticking SMs inside each simulation (0/1 = serial; results are bit-identical for any value)")
		queue     = flag.Int("queue", 64, "admission queue depth (overflow answers 429)")
		deadline  = flag.Duration("deadline", 5*time.Minute, "default per-job deadline")
		drain     = flag.Duration("drain", 30*time.Second, "shutdown drain budget for in-flight jobs")
		quick     = flag.Bool("quick", false, "use a smaller GPU (2 SMs) for a fast smoke pass")
		tiny      = flag.Bool("tiny", false, "use the CI golden-gate machine (2 SMs, 120k-instruction cap)")
		join      = flag.String("join", "", "cluster router base URL to register with (e.g. http://127.0.0.1:8500)")
		advertise = flag.String("advertise", "", "base URL the router should dial this worker at (default http://127.0.0.1:<addr port>)")
		heartbeat = flag.Duration("heartbeat", 5*time.Second, "re-registration cadence while joined to a router")
		storeDir  = flag.String("store", "", "persistent result-store directory (empty = memory-only)")
		storeMax  = flag.Int64("store-max-bytes", 0, "result-store size bound in bytes; least-recently-used entries are evicted (0 = unbounded)")
		traceDir  = flag.String("trace-dir", "", "trace-corpus directory: register every <NAME>.lct/<NAME>.json pair as a replay workload")
	)
	flag.Parse()
	if *traceDir != "" {
		// Registered before server.New snapshots the workload list —
		// registry writes are startup-only (no lock below the determinism
		// boundary).
		names, err := tracefile.RegisterCorpus(*traceDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "latteccd: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "latteccd: trace corpus: %d workload(s) registered\n", len(names))
	}
	if *workers < 1 {
		fmt.Fprintf(os.Stderr, "latteccd: -workers must be >= 1, got %d\n", *workers)
		os.Exit(2)
	}
	if *queue < 1 {
		fmt.Fprintf(os.Stderr, "latteccd: -queue must be >= 1, got %d\n", *queue)
		os.Exit(2)
	}
	if *smJobs < 0 {
		fmt.Fprintf(os.Stderr, "latteccd: -smjobs must be >= 0, got %d\n", *smJobs)
		os.Exit(2)
	}

	cfg := sim.DefaultConfig()
	if *quick || *tiny {
		cfg.NumSMs = 2
	}
	if *tiny {
		// Mirror `experiments -tiny` exactly so daemon StateHashes are
		// comparable against the CLI's golden runs.
		cfg.MaxInstructions = 120_000
	}
	cfg.SMJobs = *smJobs

	// The advertise URL does double duty: it is what the registrar
	// announces to the router AND the self-exclusion key for the
	// cache-peer lookup, so it is resolved before the server is built.
	adv := *advertise
	if adv == "" {
		adv = defaultAdvertise(*addr)
	}

	srvCfg := server.Config{
		BaseConfig:      cfg,
		Workers:         *workers,
		RunJobs:         *jobs,
		QueueDepth:      *queue,
		DefaultDeadline: *deadline,
	}
	if *storeDir != "" {
		st, err := resultstore.Open(*storeDir, resultstore.Options{MaxBytes: *storeMax})
		if err != nil {
			fmt.Fprintf(os.Stderr, "latteccd: opening result store: %v\n", err)
			os.Exit(2)
		}
		srvCfg.Store = st
		if *join != "" {
			// Clustered and stored: rescue local misses from every other
			// registered worker's store before simulating.
			srvCfg.Peers = server.RouterPeers(*join, adv)
		}
		c := st.Counters()
		fmt.Fprintf(os.Stderr, "latteccd: result store %s (%d entries, %d bytes)\n",
			*storeDir, c.Entries, c.Bytes)
	}
	srv := server.New(srvCfg)
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "latteccd: serving on %s (workers=%d queue=%d)\n", *addr, *workers, *queue)

	// Cluster membership: announce this worker to the router and keep
	// heartbeating. The router that is not up yet is retried forever —
	// worker and router start order is deliberately free.
	var registrar *server.Registrar
	if *join != "" {
		var err error
		registrar, err = server.StartRegistrar(*join, adv, *heartbeat, func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "latteccd: %v\n", err)
			os.Exit(2)
		}
	}

	select {
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "latteccd: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "latteccd: draining...")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if registrar != nil {
		// Deregister first so the router reroutes new jobs immediately
		// instead of noticing the drain at its next health probe.
		registrar.Stop(drainCtx)
	}
	drainErr := srv.Shutdown(drainCtx)
	if err := hs.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "latteccd: http shutdown: %v\n", err)
	}
	if drainErr != nil {
		fmt.Fprintf(os.Stderr, "latteccd: %v\n", drainErr)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "latteccd: drained, bye")
}
