// Benchmarks mapping to the paper's tables and figures. Each bench runs
// the representative computation behind one table/figure and reports the
// domain metric (speedup, compression ratio, ...) via b.ReportMetric, so
// `go test -bench=. -benchmem` regenerates the headline numbers alongside
// the usual ns/op. The full-resolution rows/series come from
// `go run ./cmd/experiments -all`; the benches here use a reduced GPU
// (4 SMs) so the whole suite completes in minutes.
package lattecc_test

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"lattecc"
)

// benchConfig is the reduced machine used by the simulation benches.
// SMJobs = NumSMs exercises the epoch engine at full width; on CI
// runners with spare cores this is also the fastest configuration,
// and results are bit-identical to serial either way.
func benchConfig() lattecc.Config {
	cfg := lattecc.DefaultConfig()
	cfg.NumSMs = 4
	cfg.SMJobs = cfg.NumSMs
	return cfg
}

// benchSuite caches runs across bench iterations of one benchmark.
func runOnce(b *testing.B, s *lattecc.Suite, w string, p lattecc.Policy, v lattecc.Variant) lattecc.Result {
	b.Helper()
	res, err := s.Run(w, p, v)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// --- Table I / Figure 2: codec compression ratio and throughput ---

// codecCorpus builds a mixed-value-locality corpus.
func codecCorpus(n int) [][]byte {
	rng := rand.New(rand.NewSource(1))
	out := make([][]byte, n)
	for i := range out {
		line := make([]byte, lattecc.LineSize)
		switch i % 3 {
		case 0: // spatial
			base := rng.Uint32() &^ 0xFFF
			for j := 0; j < 32; j++ {
				binary.LittleEndian.PutUint32(line[j*4:], base+uint32(j*3))
			}
		case 1: // temporal
			for j := 0; j < 32; j++ {
				binary.LittleEndian.PutUint32(line[j*4:], uint32(rng.Intn(64))*0x01010101)
			}
		default: // random
			rng.Read(line)
		}
		out[i] = line
	}
	return out
}

// BenchmarkTab1Codecs measures each codec's software compression
// throughput and reports its ratio over the mixed corpus (Table I).
func BenchmarkTab1Codecs(b *testing.B) {
	corpus := codecCorpus(512)
	sc := lattecc.NewSC()
	for _, l := range corpus {
		sc.Train(l)
	}
	sc.Rebuild()
	codecs := []lattecc.Codec{
		lattecc.NewBDI(), lattecc.NewFPC(), lattecc.NewCPACK(),
		lattecc.NewBPC(), sc,
	}
	for _, c := range codecs {
		c := c
		b.Run(c.Name(), func(b *testing.B) {
			var in, out int
			b.SetBytes(int64(len(corpus) * lattecc.LineSize))
			for i := 0; i < b.N; i++ {
				in, out = 0, 0
				for _, l := range corpus {
					enc := c.Compress(l)
					in += lattecc.LineSize
					out += enc.Size
				}
			}
			b.ReportMetric(float64(in)/float64(out), "ratio")
		})
	}
}

// BenchmarkFig2CompressionRatios reports BDI vs SC ratio contrast on the
// suite's two archetype workloads (Figure 2's phenomenon).
func BenchmarkFig2CompressionRatios(b *testing.B) {
	for _, tc := range []struct {
		workload string
		style    lattecc.ValueStyle
	}{{"FW-like", lattecc.StyleStrideInt}, {"SS-like", lattecc.StyleDictFloat}} {
		tc := tc
		b.Run(tc.workload, func(b *testing.B) {
			r := lattecc.Region{Start: 0, Lines: 4096, Style: tc.style, Seed: 3, Dict: 128}
			w := &lattecc.WorkloadSpec{
				WName: "x", Regions: []lattecc.Region{r},
				KernelSeq: []lattecc.KernelSpec{{Name: "k", Blocks: 1, WarpsPerBlock: 1,
					Phases: []lattecc.PhaseSpec{{Kind: lattecc.PhaseStream, Region: 0, Iters: 256}}}},
			}
			data := w.Data()
			bdi := lattecc.NewBDI()
			sc := lattecc.NewSC()
			for i := uint64(0); i < 512; i++ {
				sc.Train(data.Line(i))
			}
			sc.Rebuild()
			var bdiOut, scOut int
			for i := 0; i < b.N; i++ {
				bdiOut, scOut = 0, 0
				for l := uint64(0); l < 256; l++ {
					bdiOut += bdi.Compress(data.Line(l)).Size
					scOut += sc.Compress(data.Line(l)).Size
				}
			}
			total := 256.0 * lattecc.LineSize
			b.ReportMetric(total/float64(bdiOut), "BDI-ratio")
			b.ReportMetric(total/float64(scOut), "SC-ratio")
		})
	}
}

// --- Figure 1: hit-latency tolerance sweep ---

func BenchmarkFig1HitLatencySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := lattecc.NewSuite(benchConfig())
		base := runOnce(b, s, "CLR", lattecc.Uncompressed, lattecc.Variant{})
		slow := runOnce(b, s, "CLR", lattecc.Uncompressed, lattecc.Variant{ExtraHitLatency: 9})
		b.ReportMetric(float64(base.Cycles)/float64(slow.Cycles), "normIPC@+9")
	}
}

// --- Figure 3: capacity-only upper bound ---

func BenchmarkFig3ZeroLatencyUpperBound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := lattecc.NewSuite(benchConfig())
		base := runOnce(b, s, "SS", lattecc.Uncompressed, lattecc.Variant{})
		cap := runOnce(b, s, "SS", lattecc.StaticSC, lattecc.Variant{CapacityOnly: true})
		b.ReportMetric(float64(base.Cycles)/float64(cap.Cycles), "upper-bound-speedup")
	}
}

// --- Figure 4: latency-only degradation ---

func BenchmarkFig4LatencyOnly(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := lattecc.NewSuite(benchConfig())
		base := runOnce(b, s, "NW", lattecc.Uncompressed, lattecc.Variant{})
		lat := runOnce(b, s, "NW", lattecc.StaticSC, lattecc.Variant{LatencyOnly: true})
		b.ReportMetric(float64(base.Cycles)/float64(lat.Cycles), "latency-only-speedup")
	}
}

// --- Figure 5 / 16: over-time series ---

func BenchmarkFig5ToleranceSeries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := lattecc.NewSuite(benchConfig())
		res := runOnce(b, s, "SS", lattecc.LatteCC, lattecc.Variant{SampleSeries: true})
		if res.ToleranceSeries.Len() == 0 {
			b.Fatal("no tolerance samples")
		}
		b.ReportMetric(float64(res.ToleranceSeries.Len()), "samples")
	}
}

func BenchmarkFig16CapacitySeries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := lattecc.NewSuite(benchConfig())
		res := runOnce(b, s, "SS", lattecc.LatteCC, lattecc.Variant{SampleSeries: true})
		pts := res.CapacitySeries.Points()
		var avg float64
		for _, p := range pts {
			avg += p.Value
		}
		b.ReportMetric(avg/float64(len(pts)), "avg-capacity-x")
	}
}

// --- Figures 6/11/12/13: the main comparison ---

// fig11Pair runs one (workload, policy) speedup on the bench machine.
func fig11Pair(b *testing.B, w string, p lattecc.Policy) {
	for i := 0; i < b.N; i++ {
		s := lattecc.NewSuite(benchConfig())
		base := runOnce(b, s, w, lattecc.Uncompressed, lattecc.Variant{})
		run := runOnce(b, s, w, p, lattecc.Variant{})
		b.ReportMetric(float64(base.Cycles)/float64(run.Cycles), "speedup")
	}
}

func BenchmarkFig11Speedup(b *testing.B) {
	cases := []struct {
		w string
		p lattecc.Policy
	}{
		{"SS", lattecc.LatteCC},
		{"SS", lattecc.StaticSC},
		{"FW", lattecc.LatteCC},
		{"FW", lattecc.StaticBDI},
		{"KM", lattecc.LatteCC},
		{"NW", lattecc.StaticSC},
	}
	for _, tc := range cases {
		tc := tc
		b.Run(tc.w+"/"+string(tc.p), func(b *testing.B) { fig11Pair(b, tc.w, tc.p) })
	}
}

func BenchmarkFig12MissReduction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := lattecc.NewSuite(benchConfig())
		base := runOnce(b, s, "SS", lattecc.Uncompressed, lattecc.Variant{})
		run := runOnce(b, s, "SS", lattecc.LatteCC, lattecc.Variant{})
		b.ReportMetric(1-float64(run.Cache.Misses)/float64(base.Cache.Misses), "miss-reduction")
	}
}

func BenchmarkFig13Energy(b *testing.B) {
	params := lattecc.DefaultEnergyParams()
	for i := 0; i < b.N; i++ {
		s := lattecc.NewSuite(benchConfig())
		base := lattecc.EvaluateEnergy(runOnce(b, s, "SS", lattecc.Uncompressed, lattecc.Variant{}), params)
		run := lattecc.EvaluateEnergy(runOnce(b, s, "SS", lattecc.LatteCC, lattecc.Variant{}), params)
		b.ReportMetric(run.Total()/base.Total(), "norm-energy")
	}
}

func BenchmarkFig14EnergyBreakdown(b *testing.B) {
	params := lattecc.DefaultEnergyParams()
	for i := 0; i < b.N; i++ {
		s := lattecc.NewSuite(benchConfig())
		res := runOnce(b, s, "KM", lattecc.LatteCC, lattecc.Variant{})
		eb := lattecc.EvaluateEnergy(res, params)
		b.ReportMetric(eb.Static/eb.Total(), "static-share")
	}
}

// --- Figure 15: Kernel-OPT comparison ---

func BenchmarkFig15KernelOpt(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := lattecc.NewSuite(benchConfig())
		latte := runOnce(b, s, "MM", lattecc.LatteCC, lattecc.Variant{})
		ko := runOnce(b, s, "MM", lattecc.KernelOpt, lattecc.Variant{})
		b.ReportMetric(float64(ko.Cycles)/float64(latte.Cycles), "latte-vs-kernelopt")
	}
}

// --- Figure 17: adaptive baselines ---

func BenchmarkFig17AdaptiveBaselines(b *testing.B) {
	for _, p := range []lattecc.Policy{lattecc.LatteCC, lattecc.AdaptiveHits, lattecc.AdaptiveCMP} {
		p := p
		b.Run(string(p), func(b *testing.B) { fig11Pair(b, "SS", p) })
	}
}

// --- Figure 18: BDI+BPC variant ---

func BenchmarkFig18BDIBPC(b *testing.B) {
	for _, p := range []lattecc.Policy{lattecc.LatteCC, lattecc.LatteBDIBPC} {
		p := p
		b.Run(string(p), func(b *testing.B) { fig11Pair(b, "PF", p) })
	}
}

// --- Section V-E: 48KB L1 ---

func BenchmarkSens48KL1(b *testing.B) {
	cfg := benchConfig()
	cfg.Cache.SizeBytes = 48 * 1024
	for i := 0; i < b.N; i++ {
		s := lattecc.NewSuite(cfg)
		base := runOnce(b, s, "SS", lattecc.Uncompressed, lattecc.Variant{})
		run := runOnce(b, s, "SS", lattecc.LatteCC, lattecc.Variant{})
		b.ReportMetric(float64(base.Cycles)/float64(run.Cycles), "speedup@48KB")
	}
}

// --- Ablations (DESIGN.md section 4) ---

func BenchmarkAblationDecompQueue(b *testing.B) {
	for _, unbounded := range []bool{false, true} {
		name := "queued"
		if unbounded {
			name = "unbounded"
		}
		unbounded := unbounded
		b.Run(name, func(b *testing.B) {
			cfg := benchConfig()
			cfg.Cache.UnboundedDecompressor = unbounded
			for i := 0; i < b.N; i++ {
				s := lattecc.NewSuite(cfg)
				base := runOnce(b, s, "SS", lattecc.Uncompressed, lattecc.Variant{})
				run := runOnce(b, s, "SS", lattecc.StaticSC, lattecc.Variant{})
				b.ReportMetric(float64(base.Cycles)/float64(run.Cycles), "speedup")
			}
		})
	}
}

// --- Raw simulator throughput ---

func BenchmarkSimulatorThroughput(b *testing.B) {
	cfg := benchConfig()
	var insts uint64
	for i := 0; i < b.N; i++ {
		res, err := lattecc.Run(cfg, "BO", lattecc.Uncompressed)
		if err != nil {
			b.Fatal(err)
		}
		insts = res.Instructions
	}
	b.ReportMetric(float64(insts), "insts/run")
}

// BenchmarkAblationDecompBuffer measures the decompressed-line buffer
// extension (beyond the paper) on the SC-heavy showcase.
func BenchmarkAblationDecompBuffer(b *testing.B) {
	for _, entries := range []int{0, 8} {
		entries := entries
		name := "off"
		if entries > 0 {
			name = "on-8"
		}
		b.Run(name, func(b *testing.B) {
			cfg := benchConfig()
			cfg.Cache.DecompBufferEntries = entries
			for i := 0; i < b.N; i++ {
				s := lattecc.NewSuite(cfg)
				base := runOnce(b, s, "SS", lattecc.Uncompressed, lattecc.Variant{})
				run := runOnce(b, s, "SS", lattecc.StaticSC, lattecc.Variant{})
				b.ReportMetric(float64(base.Cycles)/float64(run.Cycles), "speedup")
			}
		})
	}
}
