module lattecc

go 1.22
