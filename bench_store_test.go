// Benchmarks for the persistent result store (PR 9): entry encode,
// fail-closed decode, and a full disk Load (read + checksum + StateHash
// verification). These bound the latency a warm-started daemon pays per
// store-served run instead of a fresh simulation.
package lattecc_test

import (
	"testing"

	"lattecc"
	"lattecc/internal/harness"
	"lattecc/internal/resultstore"
)

// storeBenchEntry simulates one small run and returns its store key and
// result — a real entry, so the encoded size and hash cost are
// representative.
func storeBenchEntry(b *testing.B) (harness.StoreKey, lattecc.Result) {
	b.Helper()
	cfg := lattecc.DefaultConfig()
	cfg.NumSMs = 2
	cfg.MaxInstructions = 30_000
	res, err := lattecc.Run(cfg, "SS", lattecc.LatteCC)
	if err != nil {
		b.Fatal(err)
	}
	return harness.StoreKey{
		Fingerprint: cfg.Fingerprint(),
		Workload:    "SS",
		Policy:      lattecc.LatteCC,
	}, res
}

func BenchmarkStoreEncode(b *testing.B) {
	k, res := storeBenchEntry(b)
	var raw []byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw = resultstore.Encode(k, res)
	}
	b.ReportMetric(float64(len(raw)), "bytes/entry")
}

func BenchmarkStoreDecode(b *testing.B) {
	k, res := storeBenchEntry(b)
	raw := resultstore.Encode(k, res)
	want := res.StateHash()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, got, err := resultstore.Decode(raw)
		if err != nil {
			b.Fatal(err)
		}
		if got.StateHash() != want {
			b.Fatal("decode changed the StateHash")
		}
	}
}

// BenchmarkStoreLoadVerify measures the whole warm-hit path: file read,
// checksum, decode, StateHash recompute, key match.
func BenchmarkStoreLoadVerify(b *testing.B) {
	k, res := storeBenchEntry(b)
	st, err := resultstore.Open(b.TempDir(), resultstore.Options{})
	if err != nil {
		b.Fatal(err)
	}
	st.Save(k, res)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := st.Load(k); !ok {
			b.Fatal("entry must load")
		}
	}
}
