package lattecc_test

import (
	"testing"

	"lattecc"
)

func TestPublicAPIRoundTrip(t *testing.T) {
	cfg := lattecc.DefaultConfig()
	cfg.NumSMs = 2

	res, err := lattecc.Run(cfg, "BO", lattecc.Uncompressed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 || res.Instructions == 0 || res.IPC() <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	if _, err := lattecc.Run(cfg, "NOPE", lattecc.Uncompressed); err == nil {
		t.Fatal("unknown workload must error")
	}
}

func TestPublicAPIWorkloadList(t *testing.T) {
	names := lattecc.Workloads()
	if len(names) != 28 {
		t.Fatalf("suite has %d workloads", len(names))
	}
	w, err := lattecc.WorkloadByName("SS")
	if err != nil || w.Name() != "SS" {
		t.Fatalf("WorkloadByName: %v %v", w, err)
	}
}

func TestPublicAPICustomWorkload(t *testing.T) {
	cfg := lattecc.DefaultConfig()
	cfg.NumSMs = 2
	w := &lattecc.WorkloadSpec{
		WName: "api-custom",
		Regions: []lattecc.Region{
			{Start: 0, Lines: 1024, Style: lattecc.StyleSmallInt, Seed: 5},
		},
		KernelSeq: []lattecc.KernelSpec{{
			Name: "k", Blocks: 4, WarpsPerBlock: 4,
			Phases: []lattecc.PhaseSpec{
				{Kind: lattecc.PhaseReuse, Region: 0, Iters: 100, ALU: 2, WSLines: 8},
				{Kind: lattecc.PhaseStore, Region: 0, Iters: 20, ALU: 1},
			},
		}},
	}
	res, err := lattecc.RunWorkload(cfg, w, lattecc.LatteCC)
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(4 * 4 * (100*3 + 20*2))
	if res.Instructions != want {
		t.Fatalf("instructions = %d, want %d", res.Instructions, want)
	}
}

func TestPublicAPICodecs(t *testing.T) {
	line := make([]byte, lattecc.LineSize)
	for i := range line {
		line[i] = byte(i % 7)
	}
	for _, c := range []lattecc.Codec{
		lattecc.NewBDI(), lattecc.NewFPC(), lattecc.NewCPACK(), lattecc.NewBPC(),
	} {
		enc := c.Compress(line)
		if enc.Size <= 0 || enc.Size > lattecc.LineSize {
			t.Fatalf("%s: size %d", c.Name(), enc.Size)
		}
		dec, err := c.Decompress(enc)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if string(dec) != string(line) {
			t.Fatalf("%s: round trip mismatch", c.Name())
		}
	}
	sc := lattecc.NewSC()
	sc.Train(line)
	if !sc.Rebuild() {
		t.Fatal("SC rebuild failed")
	}
	if enc := sc.Compress(line); enc.Raw {
		t.Fatal("trained SC should compress its training line")
	}
}

func TestPublicAPIEnergy(t *testing.T) {
	cfg := lattecc.DefaultConfig()
	cfg.NumSMs = 2
	res, err := lattecc.Run(cfg, "BO", lattecc.Uncompressed)
	if err != nil {
		t.Fatal(err)
	}
	eb := lattecc.EvaluateEnergy(res, lattecc.DefaultEnergyParams())
	if eb.Total() <= 0 || eb.Static <= 0 || eb.Exec <= 0 {
		t.Fatalf("degenerate energy breakdown: %+v", eb)
	}
}

func TestPublicAPIExperimentsListed(t *testing.T) {
	if len(lattecc.Experiments()) < 18 {
		t.Fatalf("only %d experiments exposed", len(lattecc.Experiments()))
	}
}
