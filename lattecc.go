// Package lattecc is a Go reproduction of "LATTE-CC: Latency Tolerance
// Aware Adaptive Cache Compression Management for Energy Efficient GPUs"
// (Arunkumar et al., HPCA 2018).
//
// It bundles a cycle-level GPU memory-system simulator (SMs, GTO warp
// schedulers, compressed L1 data caches, banked L2, DRAM), five real
// cache-line compression codecs (BDI, FPC, C-PACK+Z, BPC, SC), the
// LATTE-CC adaptive compression controller, the paper's baseline policies
// (static modes, Kernel-OPT oracle, Adaptive-Hit-Count, Adaptive-CMP), an
// event-based energy model, and a 22-benchmark synthetic workload suite
// recreating the paper's evaluation.
//
// This package is the public facade: it re-exports the pieces a user
// needs to run simulations, define custom workloads, use the codecs
// standalone, and regenerate the paper's tables and figures. The
// implementation lives under internal/.
//
// Quick start:
//
//	cfg := lattecc.DefaultConfig()
//	res, err := lattecc.Run(cfg, "SS", lattecc.LatteCC)
//	fmt.Printf("IPC %.2f, hit rate %.2f\n", res.IPC(), res.Cache.HitRate())
//
// See examples/ for runnable programs and cmd/experiments for the full
// paper reproduction.
package lattecc

import (
	"io"

	"lattecc/internal/compress"
	"lattecc/internal/energy"
	"lattecc/internal/harness"
	"lattecc/internal/sim"
	"lattecc/internal/trace"
	"lattecc/internal/tracefile"
	"lattecc/internal/workload"
)

// Config describes the simulated GPU (see sim.Config for all fields).
type Config = sim.Config

// Result is the outcome of one simulation run.
type Result = sim.Result

// Policy names a compression-management policy.
type Policy = harness.Policy

// Variant adjusts a run for the paper's motivation studies (capacity-only,
// latency-only, hit-latency sweeps, over-time sampling).
type Variant = harness.Variant

// Suite runs and caches simulations for one GPU configuration; the
// experiment functions (Fig1..Fig18, Tab1..Tab3) operate on it.
type Suite = harness.Suite

// The policies evaluated in the paper.
const (
	Uncompressed = harness.Uncompressed
	StaticBDI    = harness.StaticBDI
	StaticSC     = harness.StaticSC
	StaticBPC    = harness.StaticBPC
	LatteCC      = harness.LatteCC
	LatteBDIBPC  = harness.LatteBDIBPC
	AdaptiveHits = harness.AdaptiveHits
	AdaptiveCMP  = harness.AdaptiveCMP
	KernelOpt    = harness.KernelOpt
)

// DefaultConfig returns the paper's Table II machine: 15 SMs, 48 warps
// per SM, 2 GTO schedulers, 16KB/128B/4-way L1 with the compressed-cache
// organization, 768KB/12-bank L2, and the BDI/SC codec pair.
func DefaultConfig() Config { return sim.DefaultConfig() }

// NewSuite returns a result-caching simulation suite over cfg.
func NewSuite(cfg Config) *Suite { return harness.NewSuite(cfg) }

// Run simulates one benchmark under one policy on the given machine.
func Run(cfg Config, workloadName string, p Policy) (Result, error) {
	return NewSuite(cfg).Run(workloadName, p, Variant{})
}

// RunVariant is Run with a study variant.
func RunVariant(cfg Config, workloadName string, p Policy, v Variant) (Result, error) {
	return NewSuite(cfg).Run(workloadName, p, v)
}

// Workloads lists the benchmark abbreviations of the suite (Table III),
// cache-insensitive group first.
func Workloads() []string { return harness.Workloads() }

// WorkloadByName builds one benchmark by abbreviation.
func WorkloadByName(name string) (Workload, error) { return workload.ByName(name) }

// Workload is a benchmark: kernels plus a deterministic data image.
// Implement it (or build a workload.Spec via the re-exported types below)
// to simulate your own kernels.
type Workload = trace.Workload

// Custom-workload building blocks.
type (
	// WorkloadSpec declares a synthetic workload: regions of valued data
	// plus kernels of phase-driven warp programs.
	WorkloadSpec = workload.Spec
	// KernelSpec shapes one kernel launch of a WorkloadSpec.
	KernelSpec = workload.KernelSpec
	// PhaseSpec is one access-pattern phase of a warp program.
	PhaseSpec = workload.Phase
	// Region is a range of lines sharing one data-value style.
	Region = workload.Region
	// ValueStyle selects a region's data-value generator.
	ValueStyle = workload.ValueStyle
)

// Phase kinds and value styles for custom workloads.
const (
	PhaseStream  = workload.PhaseStream
	PhaseReuse   = workload.PhaseReuse
	PhaseRandom  = workload.PhaseRandom
	PhaseCompute = workload.PhaseCompute
	PhaseStore   = workload.PhaseStore
	PhaseBarrier = workload.PhaseBarrier

	StyleZeroHeavy = workload.StyleZeroHeavy
	StyleSmallInt  = workload.StyleSmallInt
	StyleStrideInt = workload.StyleStrideInt
	StylePointer   = workload.StylePointer
	StyleDictFloat = workload.StyleDictFloat
	StyleExpFloat  = workload.StyleExpFloat
	StyleRandom    = workload.StyleRandom
)

// RunWorkload simulates a custom workload under a policy.
func RunWorkload(cfg Config, w Workload, p Policy) (Result, error) {
	return harness.RunWorkload(cfg, w, p)
}

// ParseWorkload decodes a JSON workload definition (see
// internal/workload's loader documentation for the schema), so new
// benchmarks can be defined without writing Go.
func ParseWorkload(data []byte) (*WorkloadSpec, error) { return workload.ParseSpec(data) }

// LoadWorkloadFile reads a JSON workload definition from a file.
func LoadWorkloadFile(path string) (*WorkloadSpec, error) { return workload.LoadSpecFile(path) }

// Codec compresses and decompresses 128-byte cache lines.
type Codec = compress.Codec

// Encoded is a compressed line with its accounting size.
type Encoded = compress.Encoded

// LineSize is the cache line size all codecs operate on.
const LineSize = compress.LineSize

// The five Table I codecs, usable standalone.
func NewBDI() Codec       { return compress.NewBDI() }
func NewFPC() Codec       { return compress.NewFPC() }
func NewCPACK() Codec     { return compress.NewCPACK() }
func NewBPC() Codec       { return compress.NewBPC() }
func NewSC() *compress.SC { return compress.NewSC() }

// Energy model re-exports.
type (
	// EnergyParams holds the per-event energies of the GPUWattch-style
	// model.
	EnergyParams = energy.Params
	// EnergyBreakdown is a per-component energy account.
	EnergyBreakdown = energy.Breakdown
)

// DefaultEnergyParams returns the calibrated energy model (codec energies
// from the paper's Section IV-C).
func DefaultEnergyParams() EnergyParams { return energy.DefaultParams() }

// EvaluateEnergy computes a run's energy breakdown.
func EvaluateEnergy(res Result, p EnergyParams) EnergyBreakdown {
	return energy.Evaluate(res, p)
}

// Experiments lists the paper's tables and figures; each regenerates its
// rows/series on a Suite. See cmd/experiments.
func Experiments() []harness.Experiment { return harness.Experiments() }

// Trace record/replay (package tracefile): record the L1 access stream of
// a full simulation once, then answer cache-policy questions by replaying
// it through the compressed cache alone — orders of magnitude faster.
type (
	// TraceWriter records L1 accesses; set it as Config.Trace.
	TraceWriter = tracefile.Writer
	// TraceReader iterates a recorded trace.
	TraceReader = tracefile.Reader
	// TraceRecord is one recorded L1 access.
	TraceRecord = tracefile.Record
	// ReplayResult aggregates a trace replay's cache statistics.
	ReplayResult = tracefile.ReplayResult
)

// NewTraceWriter starts a trace for the named workload on w.
func NewTraceWriter(w io.Writer, workloadName string) (*TraceWriter, error) {
	return tracefile.NewWriter(w, workloadName)
}

// NewTraceReader opens a recorded trace.
func NewTraceReader(r io.Reader) (*TraceReader, error) { return tracefile.NewReader(r) }

// RegisterWorkload adds a workload to the global registry so it shows up
// in Workloads(), Run, the experiment suite, and the daemon. Startup-only:
// call it before any concurrent use of the registry (see
// workload.RegisterExternal).
func RegisterWorkload(w Workload) error { return workload.RegisterExternal(w) }

// LoadTraceCorpus registers every trace-replay workload found in dir
// (pairs of <NAME>.lct + <NAME>.json, see tracefile.LoadCorpus). It
// returns the registered names in registration order. Startup-only, like
// RegisterWorkload.
func LoadTraceCorpus(dir string) ([]string, error) { return tracefile.RegisterCorpus(dir) }
