package lattecc_test

import (
	"encoding/binary"
	"fmt"

	"lattecc"
)

// ExampleRun simulates one built-in benchmark under the LATTE-CC policy.
func ExampleRun() {
	cfg := lattecc.DefaultConfig()
	cfg.NumSMs = 2 // shrink the machine so the example runs fast

	res, err := lattecc.Run(cfg, "BO", lattecc.LatteCC)
	if err != nil {
		panic(err)
	}
	fmt.Println("policy:", res.Policy)
	fmt.Println("completed:", res.Instructions > 0)
	// Output:
	// policy: LATTE-CC
	// completed: true
}

// ExampleRunWorkload builds a custom workload from the declarative spec
// types and simulates it.
func ExampleRunWorkload() {
	w := &lattecc.WorkloadSpec{
		WName: "example",
		Regions: []lattecc.Region{
			{Start: 0, Lines: 1024, Style: lattecc.StyleStrideInt, Seed: 1},
		},
		KernelSeq: []lattecc.KernelSpec{{
			Name: "k", Blocks: 2, WarpsPerBlock: 2,
			Phases: []lattecc.PhaseSpec{
				{Kind: lattecc.PhaseReuse, Region: 0, Iters: 50, ALU: 1, WSLines: 8},
			},
		}},
	}
	cfg := lattecc.DefaultConfig()
	cfg.NumSMs = 2
	res, err := lattecc.RunWorkload(cfg, w, lattecc.StaticBDI)
	if err != nil {
		panic(err)
	}
	// 2 blocks × 2 warps × 50 iters × (1 load + 1 ALU).
	fmt.Println("instructions:", res.Instructions)
	// Output:
	// instructions: 400
}

// ExampleParseWorkload defines a benchmark in JSON — no Go required.
func ExampleParseWorkload() {
	spec, err := lattecc.ParseWorkload([]byte(`{
		"name": "JSONAPP",
		"category": "C-Sens",
		"regions": [{"lines": 2048, "style": "dict-float", "seed": 3, "dict": 64}],
		"kernels": [{
			"blocks": 2, "warpsPerBlock": 2,
			"phases": [{"kind": "reuse", "region": 0, "iters": 30, "alu": 2, "wsLines": 4}]
		}]
	}`))
	if err != nil {
		panic(err)
	}
	fmt.Println(spec.Name(), spec.Category())
	// Output:
	// JSONAPP C-Sens
}

// ExampleCodec compresses a cache line with BDI and decompresses it back.
func ExampleCodec() {
	// A line of small deltas from one base: BDI's favourite food.
	line := make([]byte, lattecc.LineSize)
	for i := 0; i < 32; i++ {
		binary.LittleEndian.PutUint32(line[i*4:], 0x1000_0000+uint32(i))
	}
	bdi := lattecc.NewBDI()
	enc := bdi.Compress(line)
	dec, err := bdi.Decompress(enc)
	if err != nil {
		panic(err)
	}
	fmt.Println("compressed to", enc.Size, "bytes")
	fmt.Println("round trip ok:", string(dec) == string(line))
	// Output:
	// compressed to 40 bytes
	// round trip ok: true
}
